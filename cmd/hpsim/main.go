// Command hpsim runs the reproduction's experiments: one simulation, one
// paper figure/table, or the full evaluation.
//
// Usage:
//
//	hpsim -list                            # every workload, scheme and experiment id
//	hpsim -experiment fig9                 # regenerate one figure
//	hpsim -experiment all                  # the whole evaluation
//	hpsim -experiment microservice -quick  # chain suite with per-request tails
//	hpsim -experiment all -parallel 8      # same tables, 8 cores
//	hpsim -workload tidb-tpcc -scheme Hierarchical
//	hpsim -experiment fig9 -quick          # fast smoke run
//	hpsim -experiment degradation -quick   # fault-injection degradation table
//	hpsim -workload gin -fault tag-flip:0.001
//	hpsim -experiment table2 -quick -digest  # reproducibility fingerprints
//	hpsim -workload gin -record gin.hpt      # capture a replayable trace
//	hpsim -workload gin -replay gin.hpt      # simulate from the trace
//	hpsim -experiment fig9 -tracedir traces/ # replay-backed experiment
//	hpsim -sweep -corpus corpus/ -quick      # corpus-resolved, self-healing replay
//	hpsim -workload gin -sample 50000,100000,800000  # interval-sampled run
//	hpsim -sweep -workloads gin,echo -schemes FDIP,Hierarchical -quick
//	hpsim -workload tidb-tpcc -scheme GHB -degree 4   # static degree override
//	hpsim -workload tidb-tpcc -scheme GHB -governed   # adaptive feedback throttling
//	hpsim -experiment throttling -quick               # static sweep vs governor table
//
// -sweep renders the same workload × scheme IPC table a fleet
// coordinator (hpserved -coordinator) aggregates across backends;
// determinism makes the two byte-identical, which CI exploits to
// cross-check the fleet path against a single-node run.
//
// With -digest, hpsim prints one stable fingerprint line per result
// instead of the full output. Simulations are deterministic, so the
// digest output is byte-identical across independent process
// invocations with the same flags; CI diffs two runs to catch
// nondeterminism or unintended behaviour drift. Replayed runs (-replay,
// -tracedir) carry the same guarantee: a trace recorded by -record
// yields the same digests as the live workload it captured.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hprefetch"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id ("+strings.Join(hprefetch.ExperimentIDs(), ", ")+") or 'all'")
		workload   = flag.String("workload", "", "single-run mode: workload name ("+strings.Join(hprefetch.AllWorkloads(), ", ")+")")
		scheme     = flag.String("scheme", "Hierarchical", "single-run mode: one of "+schemeNames())
		warm       = flag.Uint64("warm", 0, "warmup instructions (0 = default)")
		measure    = flag.Uint64("measure", 0, "measured instructions (0 = default)")
		quick      = flag.Bool("quick", false, "fast smoke configuration")
		only       = flag.String("workloads", "", "comma-separated workload subset for experiments")
		format     = flag.String("format", "text", "experiment output: text or csv")
		faultSpec  = flag.String("fault", "", "inject a fault: class[:rate[:seed]] with class in "+strings.Join(hprefetch.FaultClasses(), ", "))
		parallel   = flag.Int("parallel", 1, "concurrent simulations for experiment sweeps (tables stay byte-identical to a serial run)")
		digest     = flag.Bool("digest", false, "print stable result fingerprints instead of full output (reproducibility checks)")
		sample     = flag.String("sample", "", "interval sampling spec warm,measure,skip[,seed] in instructions (empty = exact simulation)")
		record     = flag.String("record", "", "capture -workload's event stream to this trace file instead of simulating")
		replay     = flag.String("replay", "", "replay the event stream from this recorded trace instead of running live")
		tracedir   = flag.String("tracedir", "", "replay workloads with a trace at <dir>/<workload>.hpt, run the rest live")
		corpusDir  = flag.String("corpus", "", "resolve workloads through the content-addressed trace corpus at this directory (self-healing replay)")
		sweep      = flag.Bool("sweep", false, "run a workload × scheme IPC sweep (the table a fleet coordinator produces)")
		schemes    = flag.String("schemes", "", "comma-separated scheme subset for -sweep (default: all evaluated schemes)")
		list       = flag.Bool("list", false, "print every known workload, scheme and experiment id (sorted) and exit")
		degree     = flag.Int("degree", 0, "static prefetch degree override for tunable schemes (0 = scheme default)")
		governed   = flag.Bool("governed", false, "attach the adaptive feedback throttling governor (tunable schemes only)")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range hprefetch.AllWorkloads() {
			fmt.Println("  " + w)
		}
		names := make([]string, 0, len(hprefetch.AllSchemes()))
		for _, s := range hprefetch.AllSchemes() {
			names = append(names, string(s))
		}
		sort.Strings(names)
		fmt.Println("schemes:")
		for _, s := range names {
			fmt.Println("  " + s)
		}
		ids := append([]string{}, hprefetch.ExperimentIDs()...)
		sort.Strings(ids)
		fmt.Println("experiments:")
		for _, id := range ids {
			fmt.Println("  " + id)
		}
		return
	}

	opt := &hprefetch.Options{
		WarmInstructions:    *warm,
		MeasureInstructions: *measure,
		Quick:               *quick,
		Fault:               *faultSpec,
		Parallel:            *parallel,
		ReplayTrace:         *replay,
		TraceDir:            *tracedir,
		CorpusDir:           *corpusDir,
		Sample:              *sample,
		PFDegree:            *degree,
		Governed:            *governed,
	}
	if *only != "" {
		opt.Workloads = strings.Split(*only, ",")
	}

	switch {
	case *record != "":
		if *workload == "" {
			fatal(fmt.Errorf("-record requires -workload"))
		}
		sum, err := hprefetch.RecordTrace(*workload, *record, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %s: %d events (%d instructions, %d requests) in %d frames, %d bytes\n",
			*record, sum.Events, sum.Instructions, sum.Requests, sum.Frames, sum.FileBytes)
	case *sweep:
		var schemeList []string
		if *schemes != "" {
			schemeList = strings.Split(*schemes, ",")
		}
		t, err := hprefetch.RunSweep(schemeList, opt)
		if err != nil {
			fatal(err)
		}
		emit(t, *format, *digest)
	case *workload != "":
		st, err := hprefetch.Simulate(*workload, hprefetch.Scheme(*scheme), opt)
		if err != nil {
			fatal(err)
		}
		if *digest {
			fmt.Printf("%s/%s\t%s\n", st.Workload, st.Scheme, st.StatsDigest)
			return
		}
		fmt.Printf("workload:  %s\nscheme:    %s\nmachine:   %s\n", st.Workload, st.Scheme, hprefetch.MachineDescription())
		fmt.Printf("IPC:       %.3f  (%+.1f%% vs FDIP)\n", st.IPC, st.SpeedupOverFDIP*100)
		if *faultSpec != "" {
			fmt.Printf("faults:    %s  (loader tag drops %d, bundle rejects %d)\n",
				*faultSpec, st.TagDrops, st.BundleRejects)
		}
		if st.SampleIntervals > 0 {
			fmt.Printf("sampling:  %d intervals, IPC %.3f ± %.3f, %.0f%% detailed\n",
				st.SampleIntervals, st.SampleIPCMean, st.SampleIPCStdErr, st.SampleDetailedFrac*100)
		}
		if st.GovernorIntervals > 0 {
			fmt.Printf("governor:  %d intervals, %d up / %d down, final %s\n",
				st.GovernorIntervals, st.GovernorStepUps, st.GovernorStepDowns, st.GovernorFinalLevel)
			if st.GovernorSchedule != "" {
				fmt.Printf("schedule:  %s\n", st.GovernorSchedule)
			}
		}
		if st.TLBDropped > 0 {
			fmt.Printf("tlb:       %.1f%% candidate pages missed, %d prefetches dropped\n",
				st.TLBMissFraction*100, st.TLBDropped)
		}
		fmt.Printf("branches:  %.2f MPKI   L1-I clean misses: %.2f MPKI\n", st.BranchMPKI, st.L1IMPKI)
		if st.Scheme != hprefetch.FDIP && st.Scheme != hprefetch.PerfectL1I {
			fmt.Printf("prefetch:  acc %.1f%%  covL1 %.1f%%  covL2 %.1f%%  late %.1f%%  dist %.1f blocks\n",
				st.PrefetchAccuracy*100, st.CoverageL1*100, st.CoverageL2*100,
				st.LateFraction*100, st.AvgPrefetchDistance)
		}
	case *experiment == "all":
		tables, err := hprefetch.RunAllExperiments(opt)
		for _, t := range tables {
			emit(t, *format, *digest)
		}
		if err != nil {
			fatal(err)
		}
	case *experiment != "":
		t, err := hprefetch.RunExperiment(*experiment, opt)
		if err != nil {
			fatal(err)
		}
		emit(t, *format, *digest)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emit(t *hprefetch.Table, format string, digest bool) {
	if digest {
		fmt.Printf("%s\t%s\n", t.ID, t.Digest())
		return
	}
	if format == "csv" {
		fmt.Printf("# %s — %s\n%s\n", t.ID, t.Title, t.CSV())
		return
	}
	t.Fprint(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpsim:", err)
	os.Exit(1)
}

// schemeNames renders the full scheme registry for flag help.
func schemeNames() string {
	names := make([]string, 0, len(hprefetch.AllSchemes()))
	for _, s := range hprefetch.AllSchemes() {
		names = append(names, string(s))
	}
	return strings.Join(names, ", ")
}
