package hprefetch

// One benchmark per table and figure of the paper's evaluation (§7).
// Each bench regenerates its artifact through the harness and prints the
// resulting table, so `go test -bench=. -benchmem` leaves a complete
// paper-vs-measured record in its output. Results are memoised across
// benchmarks within the process: the headline experiments share their
// FDIP baselines and scheme runs.
//
// The headline experiments (Figures 9-12, 16, 17, Table 2) run all
// eleven workloads; the parameter sweeps (Figures 2, 13-15, Table 3) use
// a representative four-workload subset to keep the suite's wall time
// reasonable.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hprefetch/internal/harness"
)

// benchFull is the headline configuration: all workloads.
func benchFull() harness.RunConfig {
	rc := harness.DefaultRunConfig()
	rc.WarmInstr = 4_000_000
	rc.MeasureInstr = 8_000_000
	return rc
}

// benchSweep is the sweep configuration: a representative subset.
func benchSweep() harness.RunConfig {
	rc := benchFull()
	rc.WarmInstr = 3_000_000
	rc.MeasureInstr = 5_000_000
	rc.Workloads = []string{"gin", "caddy", "mysql-sysbench", "tidb-tpcc"}
	return rc
}

var printOnce sync.Map

// runExperiment executes the generator once per bench invocation (memoised
// underneath), prints the table a single time, and reports a headline
// metric when one is extractable.
func runExperiment(b *testing.B, id string, gen func() (*harness.Table, error)) {
	b.Helper()
	var tbl *harness.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = gen()
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, printed := printOnce.LoadOrStore(id, true); !printed && tbl != nil {
		tbl.Fprint(os.Stdout)
	}
	if m, ok := meanSpeedupFromTable(tbl); ok {
		b.ReportMetric(m, "mean-speedup-%")
	}
}

// meanSpeedupFromTable extracts the last percentage of a MEAN row, when
// the table has one — a convenient single number per figure.
func meanSpeedupFromTable(t *harness.Table) (float64, bool) {
	if t == nil {
		return 0, false
	}
	for _, row := range t.Rows {
		if len(row) == 0 || row[0] != "MEAN" {
			continue
		}
		for i := len(row) - 1; i > 0; i-- {
			s := strings.TrimSuffix(strings.TrimPrefix(row[i], "+"), "%")
			if v, err := strconv.ParseFloat(s, 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func BenchmarkFig1StageFootprints(b *testing.B) {
	rc := benchSweep()
	rc.Workloads = nil // Figure 1 is the TiDB pipeline
	runExperiment(b, "fig1", func() (*harness.Table, error) { return harness.Fig1StageFootprints(rc) })
}

func BenchmarkFig2aManaLookahead(b *testing.B) {
	rc := benchSweep()
	runExperiment(b, "fig2a", func() (*harness.Table, error) { return harness.Fig2aManaLookahead(rc, nil) })
}

func BenchmarkFig2bEFetchLookahead(b *testing.B) {
	rc := benchSweep()
	runExperiment(b, "fig2b", func() (*harness.Table, error) { return harness.Fig2bEFetchLookahead(rc, nil) })
}

func BenchmarkFig2cEIPDistance(b *testing.B) {
	rc := benchSweep()
	runExperiment(b, "fig2c", func() (*harness.Table, error) { return harness.Fig2cEIPDistance(rc) })
}

func BenchmarkFig3DistanceAccuracyCoverage(b *testing.B) {
	rc := benchFull()
	runExperiment(b, "fig3", func() (*harness.Table, error) { return harness.Fig3DistanceAccuracyCoverage(rc) })
}

func BenchmarkFig4TriggerSimilarity(b *testing.B) {
	rc := benchSweep()
	runExperiment(b, "fig4", func() (*harness.Table, error) { return harness.Fig4TriggerSimilarity(rc, nil) })
}

func BenchmarkFig9Speedup(b *testing.B) {
	rc := benchFull()
	runExperiment(b, "fig9", func() (*harness.Table, error) { return harness.Fig9Speedup(rc) })
}

func BenchmarkFig10LatePrefetches(b *testing.B) {
	rc := benchFull()
	runExperiment(b, "fig10", func() (*harness.Table, error) { return harness.Fig10LatePrefetches(rc) })
}

func BenchmarkFig11MissLatency(b *testing.B) {
	rc := benchFull()
	runExperiment(b, "fig11", func() (*harness.Table, error) { return harness.Fig11MissLatency(rc) })
}

func BenchmarkFig12LongRange(b *testing.B) {
	rc := benchFull()
	runExperiment(b, "fig12", func() (*harness.Table, error) { return harness.Fig12LongRange(rc) })
}

func BenchmarkFig13MetadataSensitivity(b *testing.B) {
	rc := benchSweep()
	runExperiment(b, "fig13", func() (*harness.Table, error) { return harness.Fig13MetadataSensitivity(rc, nil, nil) })
}

func BenchmarkFig14InfiniteBTB(b *testing.B) {
	rc := benchSweep()
	runExperiment(b, "fig14", func() (*harness.Table, error) { return harness.Fig14InfiniteBTB(rc) })
}

func BenchmarkFig15aFTQ(b *testing.B) {
	rc := benchSweep()
	runExperiment(b, "fig15a", func() (*harness.Table, error) { return harness.Fig15aFTQ(rc, nil) })
}

func BenchmarkFig15bITLB(b *testing.B) {
	rc := benchSweep()
	runExperiment(b, "fig15b", func() (*harness.Table, error) { return harness.Fig15bITLB(rc, nil) })
}

func BenchmarkFig16Bandwidth(b *testing.B) {
	rc := benchFull()
	runExperiment(b, "fig16", func() (*harness.Table, error) { return harness.Fig16Bandwidth(rc) })
}

func BenchmarkFig17L2Prefetch(b *testing.B) {
	rc := benchFull()
	runExperiment(b, "fig17", func() (*harness.Table, error) { return harness.Fig17L2Prefetch(rc) })
}

func BenchmarkTable2Summary(b *testing.B) {
	rc := benchFull()
	runExperiment(b, "table2", func() (*harness.Table, error) { return harness.Table2Summary(rc) })
}

func BenchmarkTable3L1ISweep(b *testing.B) {
	rc := benchSweep()
	runExperiment(b, "table3", func() (*harness.Table, error) { return harness.Table3L1ISweep(rc, nil) })
}

func BenchmarkTable4BundleStats(b *testing.B) {
	rc := benchFull()
	runExperiment(b, "table4", func() (*harness.Table, error) { return harness.Table4BundleStats(rc) })
}

// BenchmarkSimulatorThroughput measures raw simulation speed (the whole
// stack: engine, front-end, hierarchy, Hierarchical Prefetcher) in
// simulated instructions per wall second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	rc := harness.DefaultRunConfig()
	rc.Workloads = []string{"gin"}
	rc.WarmInstr = 500_000
	for i := 0; i < b.N; i++ {
		rc.MeasureInstr = 2_000_000 + uint64(i) // defeat memoisation
		r, err := harness.Run("gin", harness.SchemeHier, rc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Stats.Instructions), "instr/op")
	}
}

// BenchmarkReplayVsLive quantifies what trace replay buys: the same
// (workload, scheme, window) simulated from the live engine and from a
// recorded trace. Replayed runs skip program interpretation, and the
// harness decodes each trace once per process (the in-memory trace
// cache), so steady-state replay streams events from decoded arrays —
// the sub-benchmark ratio is the speedup README quotes.
func BenchmarkReplayVsLive(b *testing.B) {
	rc := harness.DefaultRunConfig()
	rc.Workloads = []string{"gin"}
	rc.WarmInstr = 500_000
	rc.MeasureInstr = 1_500_000
	path := filepath.Join(b.TempDir(), "gin.hpt")
	if _, err := harness.RecordTrace("gin", path, rc); err != nil {
		b.Fatal(err)
	}
	instr := float64(rc.WarmInstr + rc.MeasureInstr)

	b.Run("live", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.RunUncached("gin", harness.SchemeFDIP, rc); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(instr*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
	})
	b.Run("replay", func(b *testing.B) {
		rcR := rc
		rcR.TracePath = path
		for i := 0; i < b.N; i++ {
			if _, err := harness.RunUncached("gin", harness.SchemeFDIP, rcR); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(instr*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
	})
}

// TestMain prints a banner so bench output records the machine model.
func TestMain(m *testing.M) {
	fmt.Println("hprefetch reproduction bench suite — simulated machine per Table 1 of the paper")
	os.Exit(m.Run())
}

// BenchmarkAblations exercises the design-choice ablations DESIGN.md
// calls out: record-latest vs record-once, pacing on vs off.
func BenchmarkAblations(b *testing.B) {
	rc := benchSweep()
	runExperiment(b, "ablation", func() (*harness.Table, error) { return harness.Ablations(rc) })
}
