module hprefetch

go 1.22
