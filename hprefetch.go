// Package hprefetch is a from-scratch Go reproduction of "Hierarchical
// Prefetching: A Software-Hardware Instruction Prefetcher for Server
// Applications" (ASPLOS 2025). It bundles:
//
//   - the Hierarchical Prefetcher itself (Bundle identification at link
//     time, record-and-replay hardware with a 1.94KB on-chip budget);
//   - the substrates it needs — a synthetic server-application generator,
//     an ELF-like binary format with linker and loader, an execution
//     engine, and a trace-driven decoupled-FDIP front-end simulator with
//     the paper's Table 1 memory hierarchy;
//   - the baselines it is compared against (MANA, EFetch, EIP); and
//   - a harness regenerating every table and figure of the evaluation.
//
// This package is the public facade: simulate a workload under a scheme,
// run a named experiment, or inspect a workload's static Bundle analysis.
// The heavy lifting lives in internal packages; see DESIGN.md for the map.
package hprefetch

import (
	"context"
	"fmt"
	"io"

	"hprefetch/internal/fault"
	"hprefetch/internal/fleet"
	"hprefetch/internal/harness"
	"hprefetch/internal/sim"
	"hprefetch/internal/tracefile"
	"hprefetch/internal/workloads"
)

// Scheme selects the prefetching configuration under evaluation. All
// schemes run on top of the FDIP front-end, as in the paper.
type Scheme string

// The available schemes.
const (
	// FDIP is the fetch-directed-instruction-prefetching baseline.
	FDIP Scheme = "FDIP"
	// EFetch is the caller-callee baseline (PACT 2014).
	EFetch Scheme = "EFetch"
	// MANA is the temporal-streaming baseline (IEEE TC 2022).
	MANA Scheme = "MANA"
	// EIP is the entangling baseline (ISCA 2021, IPC-1 winner).
	EIP Scheme = "EIP"
	// Hierarchical is the paper's contribution.
	Hierarchical Scheme = "Hierarchical"
	// PerfectL1I is the all-hits upper bound.
	PerfectL1I Scheme = "PerfectL1I"
	// GHB is the history-buffer baseline: a classic Global History
	// Buffer instruction prefetcher (discontinuity-trained footprint
	// spray) used as the throttling experiment's tunable substrate.
	GHB Scheme = "GHB"
	// GHBTLB is the TLB-aware GHB variant: candidate prefetches whose
	// page misses the I-TLB are dropped instead of issued, trading
	// coverage for pollution immunity.
	GHBTLB Scheme = "GHB-TLB"
)

// Schemes lists the evaluated schemes in figure order.
func Schemes() []Scheme {
	return []Scheme{FDIP, EFetch, MANA, EIP, Hierarchical}
}

// AllSchemes lists every runnable scheme — the evaluated set plus the
// PerfectL1I bound and the GHB-family baselines — in registry order
// (stable across processes).
func AllSchemes() []Scheme {
	in := harness.AllSchemes()
	out := make([]Scheme, len(in))
	for i, s := range in {
		out[i] = Scheme(s)
	}
	return out
}

// Workloads lists the eleven server workloads of §6.2.
func Workloads() []string { return workloads.Names() }

// AllWorkloads lists every simulatable workload — the paper's eleven
// plus registered extensions such as the microservice chain suite —
// sorted alphabetically (stable across processes).
func AllWorkloads() []string { return workloads.AllSorted() }

// Options tunes a simulation or experiment run. The zero value (or nil)
// uses the paper-faithful defaults.
type Options struct {
	// WarmInstructions run before measurement begins (default 4M).
	WarmInstructions uint64
	// MeasureInstructions are simulated with statistics on (default 8M).
	MeasureInstructions uint64
	// Workloads restricts experiments to a subset (default: all eleven).
	Workloads []string
	// Quick trades precision for speed: shorter runs and a
	// representative workload subset. Good for smoke tests.
	Quick bool
	// Fault injects a deterministic fault into every run, specified as
	// "class[:rate[:seed]]" — e.g. "bundle-corrupt", "tag-flip:0.001",
	// "mshr-starve:0.5:7". Empty injects nothing. See FaultClasses.
	Fault string
	// Parallel runs experiment sweeps with up to this many simulations
	// in flight at once (<= 1 is serial). Results are byte-identical to
	// a serial run — simulations are deterministic and tables assemble
	// in a fixed order; only wall-clock time changes. Single-flight
	// caching dedupes runs shared between concurrent experiments.
	Parallel int
	// ReplayTrace replays the block-event stream from this recorded
	// trace file instead of interpreting the workload live. The trace
	// must match the workload and seed; a replayed run produces the
	// identical StatsDigest as its live counterpart. Incompatible with
	// Fault.
	ReplayTrace string
	// TraceDir enables replay-backed experiments: workloads with a
	// recorded trace at <TraceDir>/<workload>.hpt replay from it, the
	// rest run live.
	TraceDir string
	// CorpusDir resolves workloads through the content-addressed trace
	// corpus rooted here: a run with no explicit trace replays the best
	// published recording that covers its warm+measure window, healing
	// or routing around damaged objects (the digest never depends on
	// the corpus). See internal/corpus.
	CorpusDir string
	// Sample enables interval sampling instead of exact measurement,
	// specified as "warm,measure,skip[,seed]" in instructions — e.g.
	// "50000,100000,800000". The measure window is covered by detailed
	// intervals of warm+measure instructions separated by functionally
	// warmed skips averaging skip instructions, trading exactness for a
	// large speedup; RunStats reports the per-interval IPC spread.
	// Incompatible with trace recording. Empty means exact simulation.
	Sample string
	// PFDegree overrides the evaluated prefetcher's static aggressiveness
	// (prefetch degree) where the scheme supports it (GHB, GHB-TLB,
	// Hierarchical). 0 keeps the scheme default. Ignored under Governed.
	PFDegree int
	// Governed attaches the feedback throttling governor: per-interval
	// accuracy/lateness/pollution samples drive the prefetcher between
	// conservative, moderate and aggressive degree/lookahead levels.
	// Errors for schemes without a tunable prefetcher (e.g. FDIP).
	Governed bool
}

// parallel resolves the configured sweep width.
func (o *Options) parallel() int {
	if o == nil || o.Parallel < 1 {
		return 1
	}
	return o.Parallel
}

// FaultClasses lists the fault classes Options.Fault accepts.
func FaultClasses() []string {
	cs := fault.Classes()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = string(c)
	}
	return out
}

// runConfig converts Options into the harness configuration.
func (o *Options) runConfig() (harness.RunConfig, error) {
	rc := harness.DefaultRunConfig()
	if o == nil {
		return rc, nil
	}
	if o.Quick {
		rc = harness.QuickRunConfig()
	}
	if o.WarmInstructions > 0 {
		rc.WarmInstr = o.WarmInstructions
	}
	if o.MeasureInstructions > 0 {
		rc.MeasureInstr = o.MeasureInstructions
	}
	if len(o.Workloads) > 0 {
		rc.Workloads = o.Workloads
	}
	if o.Fault != "" {
		cfg, err := fault.ParseSpec(o.Fault)
		if err != nil {
			return rc, err
		}
		rc.Fault = cfg
	}
	rc.TracePath = o.ReplayTrace
	rc.TraceDir = o.TraceDir
	rc.CorpusDir = o.CorpusDir
	if o.Sample != "" {
		sp, err := harness.ParseSampleSpec(o.Sample)
		if err != nil {
			return rc, err
		}
		rc.Sample = sp
	}
	if o.PFDegree < 0 {
		return rc, fmt.Errorf("PFDegree must be non-negative, got %d", o.PFDegree)
	}
	rc.PFDegree = o.PFDegree
	rc.Governed = o.Governed
	return rc, nil
}

// RunStats summarises one simulation.
type RunStats struct {
	// Workload and Scheme echo the run inputs.
	Workload string
	Scheme   Scheme
	// IPC is instructions per cycle.
	IPC float64
	// SpeedupOverFDIP is IPC relative to the FDIP baseline of the same
	// workload and options (0 for the baseline itself).
	SpeedupOverFDIP float64
	// Instructions and Cycles are the measured totals.
	Instructions uint64
	Cycles       float64
	// PrefetchAccuracy, CoverageL1, CoverageL2, LateFraction and
	// AvgPrefetchDistance describe the evaluated prefetcher (zero for
	// FDIP/PerfectL1I).
	PrefetchAccuracy    float64
	CoverageL1          float64
	CoverageL2          float64
	LateFraction        float64
	AvgPrefetchDistance float64
	// BranchMPKI and L1IMPKI are mispredictions and clean L1-I misses
	// per kilo-instruction.
	BranchMPKI float64
	L1IMPKI    float64
	// TagDrops and BundleRejects count Bundle hints discarded by the
	// loader and the prefetcher's degraded-mode validation. Nonzero only
	// under fault injection (Options.Fault).
	TagDrops      int
	BundleRejects uint64
	// StatsDigest is a stable fingerprint of every counter the run
	// produced. Simulations are deterministic: the same workload,
	// scheme and options yield the same digest in any process, so two
	// digests differing means behaviour changed (see EXPERIMENTS.md,
	// "Determinism and digests").
	StatsDigest string
	// SampleIntervals, SampleIPCMean, SampleIPCStdErr and
	// SampleDetailedFrac describe an interval-sampled run
	// (Options.Sample): how many detailed intervals were measured, the
	// unweighted mean and standard error of their per-interval IPCs
	// (the error bar on IPC), and the fraction of simulated
	// instructions that ran in detailed mode. Zero for exact runs.
	SampleIntervals    int
	SampleIPCMean      float64
	SampleIPCStdErr    float64
	SampleDetailedFrac float64
	// TLBMissFraction and TLBDropped describe TLB-aware filtering
	// (GHB-TLB): the fraction of candidate prefetches whose page missed
	// the I-TLB, and how many were dropped for it. Zero elsewhere.
	TLBMissFraction float64
	TLBDropped      uint64
	// GovernorIntervals, GovernorStepUps, GovernorStepDowns,
	// GovernorFinalLevel and GovernorSchedule describe an adaptive run
	// (Options.Governed): how many feedback intervals the governor
	// sampled, how often it raised or lowered aggressiveness, the level
	// it ended at, and the canonical transition schedule (empty when it
	// never moved). Zero/empty for static runs.
	GovernorIntervals  uint64
	GovernorStepUps    uint64
	GovernorStepDowns  uint64
	GovernorFinalLevel string
	GovernorSchedule   string
}

// Simulate runs one workload under one scheme and returns its metrics.
func Simulate(workload string, scheme Scheme, opt *Options) (RunStats, error) {
	rc, err := opt.runConfig()
	if err != nil {
		return RunStats{}, err
	}
	r, err := harness.Run(workload, harness.Scheme(scheme), rc)
	if err != nil {
		return RunStats{}, err
	}
	out := RunStats{
		Workload:            workload,
		Scheme:              scheme,
		IPC:                 r.Stats.IPC(),
		Instructions:        r.Stats.Instructions,
		Cycles:              r.Stats.Cycles(),
		PrefetchAccuracy:    r.Stats.PFAccuracy(),
		CoverageL1:          r.Stats.PFCoverageL1(),
		CoverageL2:          r.Stats.PFCoverageL2(),
		LateFraction:        r.Stats.PFLateFraction(),
		AvgPrefetchDistance: r.Stats.PFAvgDistance(),
		BranchMPKI:          r.Stats.MPKI(),
		L1IMPKI:             r.Stats.L1IMPKI(),
		TagDrops:            r.TagDrops,
		BundleRejects:       r.BundleRejects,
		StatsDigest:         r.Stats.Digest(),
	}
	if r.Sample != nil {
		out.SampleIntervals = r.Sample.Intervals
		out.SampleIPCMean = r.Sample.IPCMean
		out.SampleIPCStdErr = r.Sample.IPCStdErr
		out.SampleDetailedFrac = r.Sample.DetailedFrac
	}
	out.TLBMissFraction = r.Stats.PFTLBMissFraction()
	out.TLBDropped = r.Stats.PFTLBDropped
	if r.Governor != nil {
		out.GovernorIntervals = r.Governor.Intervals
		out.GovernorStepUps = r.Governor.StepUps
		out.GovernorStepDowns = r.Governor.StepDowns
		out.GovernorFinalLevel = r.Governor.Level
		out.GovernorSchedule = r.Governor.Schedule()
	}
	if scheme != FDIP {
		sp, err := harness.Speedup(workload, harness.Scheme(scheme), rc)
		if err != nil {
			return RunStats{}, err
		}
		out.SpeedupOverFDIP = sp
	}
	return out, nil
}

// Table is a rendered experiment result (one paper figure or table).
type Table struct {
	// ID is the paper artifact ("Figure 9", "Table 2", ...).
	ID string
	// Title describes the rows.
	Title string
	// Header and Rows hold the formatted cells.
	Header []string
	Rows   [][]string
	// Notes carries the paper's reference values and any caveats.
	Notes []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) { t.internal().Fprint(w) }

// String renders the table to a string.
func (t *Table) String() string { return t.internal().String() }

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string { return t.internal().CSV() }

// Digest returns a stable fingerprint of the table's full content.
// Experiments are deterministic, so the digest is identical across
// processes and machines for the same inputs; `hpsim -digest` prints
// these for reproducibility checks.
func (t *Table) Digest() string { return t.internal().Digest() }

func (t *Table) internal() *harness.Table {
	return &harness.Table{ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes}
}

func fromInternal(t *harness.Table) *Table {
	return &Table{ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes}
}

// ExperimentIDs lists the experiments RunExperiment accepts, in paper
// order: fig1, fig2a-c, fig3, fig4, fig9-fig17, table2-table4.
func ExperimentIDs() []string { return harness.ExperimentIDs() }

// RunExperiment regenerates one of the paper's tables or figures. With
// Options.Parallel > 1 the base (workload × scheme) runs the experiment
// shares with the rest of the evaluation are pre-warmed concurrently;
// the experiment's own table assembly stays serial, so its output is
// identical to a serial run.
func RunExperiment(id string, opt *Options) (*Table, error) {
	rc, err := opt.runConfig()
	if err != nil {
		return nil, err
	}
	if p := opt.parallel(); p > 1 {
		harness.DefaultRunner().Warm(rc, p)
	}
	tbl, err := harness.Experiment(id, rc)
	if err != nil {
		return nil, err
	}
	return fromInternal(tbl), nil
}

// RunAllExperiments regenerates every experiment in paper order. With
// Options.Parallel > 1 the shared base runs are pre-warmed and the
// experiment generators themselves execute concurrently; tables still
// come back in paper order with byte-identical contents.
func RunAllExperiments(opt *Options) ([]*Table, error) {
	rc, err := opt.runConfig()
	if err != nil {
		return nil, err
	}
	p := opt.parallel()
	if p > 1 {
		harness.DefaultRunner().Warm(rc, p)
	}
	tbls, err := harness.AllExperimentsParallel(rc, p)
	out := make([]*Table, len(tbls))
	for i, t := range tbls {
		out[i] = fromInternal(t)
	}
	return out, err
}

// RunSweep runs a workload × scheme IPC sweep locally, single-node.
// This is the exact computation and table a fleet coordinator
// (`hpserved -coordinator`) shards across backends: determinism makes
// the two byte-identical, so `hpsim -sweep` output diffs cleanly
// against a coordinator's aggregated table — CI uses that diff as a
// fleet integrity check. Workloads come from opt.Workloads (default
// all); schemes default to the evaluated set in figure order.
func RunSweep(schemes []string, opt *Options) (*Table, error) {
	sp := fleet.SweepSpec{Schemes: schemes}
	if opt != nil {
		sp.Workloads = opt.Workloads
		sp.Quick = opt.Quick
		sp.WarmInstr = opt.WarmInstructions
		sp.MeasureInstr = opt.MeasureInstructions
		sp.CorpusDir = opt.CorpusDir
	}
	t, err := fleet.RunLocal(context.Background(), sp)
	if err != nil {
		return nil, err
	}
	return fromInternal(t), nil
}

// TraceSummary describes a recorded block-event trace file.
type TraceSummary struct {
	// Workload and Seed identify what the trace was captured from.
	Workload string
	Seed     uint64
	// Frames, Events, Instructions and Requests are stream totals (for
	// a truncated trace: totals of the readable prefix).
	Frames       int
	Events       uint64
	Instructions uint64
	Requests     uint64
	// FileBytes is the on-disk size, header and index included.
	FileBytes int64
	// Complete reports a sealed, seekable trace; Truncated one cut
	// mid-write (still replayable up to its last complete frame).
	Complete  bool
	Truncated bool
}

// RecordTrace captures a workload's retired block-event stream to path,
// covering the configured warm+measure window plus a lookahead tail, so
// any scheme can later be simulated from the file via
// Options.ReplayTrace with a StatsDigest identical to the live run.
func RecordTrace(workload, path string, opt *Options) (TraceSummary, error) {
	rc, err := opt.runConfig()
	if err != nil {
		return TraceSummary{}, err
	}
	if _, err := harness.RecordTrace(workload, path, rc); err != nil {
		return TraceSummary{}, err
	}
	info, err := tracefile.Stat(path)
	if err != nil {
		return TraceSummary{}, err
	}
	return traceSummary(info), nil
}

// TraceInfo inspects an existing trace file without simulating it.
func TraceInfo(path string) (TraceSummary, error) {
	info, err := tracefile.Stat(path)
	if err != nil {
		return TraceSummary{}, err
	}
	return traceSummary(info), nil
}

func traceSummary(info tracefile.Info) TraceSummary {
	return TraceSummary{
		Workload:     info.Meta.Workload,
		Seed:         info.Meta.Seed,
		Frames:       info.Frames,
		Events:       info.Events,
		Instructions: info.Instructions,
		Requests:     info.Requests,
		FileBytes:    info.FileBytes,
		Complete:     info.Indexed,
		Truncated:    info.Truncated,
	}
}

// BundleReport summarises a workload's static Bundle identification —
// the link-time software pass of §5.1-5.2.
type BundleReport struct {
	// Workload names the analysed binary.
	Workload string
	// TotalFunctions is the static function count.
	TotalFunctions int
	// Entries is the number of identified Bundle entry functions.
	Entries int
	// EntryFraction is Entries / TotalFunctions.
	EntryFraction float64
	// TaggedInstructions is how many call/return instructions the
	// loader tags.
	TaggedInstructions int
	// ThresholdBytes is the divergence threshold used (paper: 200KB).
	ThresholdBytes uint64
	// TextBytes is the linked text-segment size.
	TextBytes uint64
}

// AnalyzeWorkload generates, links and statically analyses a workload,
// returning its Bundle identification report.
func AnalyzeWorkload(name string) (BundleReport, error) {
	b, err := workloads.Build(name)
	if err != nil {
		return BundleReport{}, err
	}
	total := b.Loaded.Prog.NumFuncs()
	entries := len(b.Linked.Analysis.Entries)
	return BundleReport{
		Workload:           name,
		TotalFunctions:     total,
		Entries:            entries,
		EntryFraction:      float64(entries) / float64(total),
		TaggedInstructions: b.Loaded.Tags.Len(),
		ThresholdBytes:     b.Loaded.Threshold,
		TextBytes:          b.Loaded.Prog.TextSize,
	}, nil
}

// MachineDescription returns a human-readable summary of the simulated
// core and memory hierarchy (Table 1 of the paper).
func MachineDescription() string {
	p := sim.DefaultParams()
	return fmt.Sprintf(
		"fetch %d-wide, FTQ %d, BTB %d-entry/%d-way, L1-I %dKB/%d-way (%d MSHRs), "+
			"L2 %dKB, LLC %dMB, mem %d cycles, I-TLB %d entries",
		p.FetchWidth, p.FTQEntries, p.BP.BTBEntries, p.BP.BTBWays,
		p.L1ISizeKB(), p.L1IWays, p.MSHRs,
		p.L2Sets*p.L2Ways*64/1024, p.LLCSets*p.LLCWays*64/1024/1024,
		p.MemLatency, p.ITLBEntries)
}
